package main

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"concord/internal/adapt"
	"concord/internal/kv"
	"concord/internal/live"
	"concord/internal/netsrv"
	"concord/internal/obs"
	"concord/internal/proto"
	"concord/internal/shadow"
)

// testEnv bundles the surfaces main wires together with -obs, -adaptive
// and -shadow, so tests exercise statsLine/serveControl exactly as the
// daemon calls them.
type testEnv struct {
	srv      *live.Server
	ns       *netsrv.Server
	ob       *kvObs
	ctrl     *adapt.Controller
	sketches *obs.ClassSketches
	ctails   *obs.ClassTails
	replayer *shadow.Replayer
}

func (e *testEnv) stats() string {
	return statsLine(e.srv, e.ns, e.ob, e.ctrl, e.sketches, e.ctails, e.replayer)
}

func (e *testEnv) control(out io.Writer, line string, obsOn *bool) bool {
	return serveControl(out, line, e.srv, e.ns, e.ob, e.ctrl, e.sketches, e.ctails, e.replayer, obsOn)
}

// newTestObs boots an in-process server with the full observability
// and control-plane surface, exactly as main wires it with -obs,
// -adaptive and -shadow. The controller and replayer are built but not
// run: tests drive them (or ignore them) deterministically.
func newTestObs(t *testing.T) *testEnv {
	return newTestObsSharded(t, 1)
}

func newTestObsSharded(t *testing.T, shards int) *testEnv {
	t.Helper()
	const workers = 2
	tracer := obs.NewTracerSharded(workers, shards, 1024)
	slo := obs.NewSLOTracker(obs.SLOConfig{Target: 200 * time.Microsecond, Objective: 0.999})
	tail := obs.NewTailTracker(nil, slo)
	cvEst := &adapt.CVEstimator{}
	sketches := obs.NewClassSketches(live.NumClasses)
	slos := make([]obs.ClassSLO, live.NumClasses)
	for c := live.SLOClass(0); c < live.NumClasses; c++ {
		slos[c] = obs.ClassSLO{Target: c.DefaultObjective(), Objective: 0.999}
	}
	ctails := obs.NewClassTails(slos, nil)
	ring := live.NewCaptureRing(1024, 1)
	srv := live.New(&netsrv.KVHandler{Store: kv.New(), ScanBatch: 64}, live.Options{
		Workers:         workers,
		Shards:          shards,
		PinThreads:      false,
		Tracer:          tracer,
		Tail:            tail,
		Adaptive:        true,
		ServiceObserver: cvEst.Observe,
		Sketches:        sketches,
		Capture:         ring,
		ClassTails:      ctails,
	})
	srv.Start()
	t.Cleanup(srv.Stop)
	ns := netsrv.New(srv, netsrv.Options{})
	ctrl := adapt.New(srv, adapt.Config{SLOTarget: 200 * time.Microsecond})
	replayer := shadow.NewReplayer(ring, shadow.Config{Workers: workers, QuantumUS: 100, MinRecs: 4}, time.Hour)
	return &testEnv{
		srv:      srv,
		ns:       ns,
		ob:       newKVObs(tracer, tail, ctails, ctrl, srv, ns, sketches, replayer, workers, shards),
		ctrl:     ctrl,
		sketches: sketches,
		ctails:   ctails,
		replayer: replayer,
	}
}

func put(t *testing.T, srv *live.Server, key, val string) {
	t.Helper()
	resp := srv.Do(&netsrv.Request{Op: proto.OpPut, Key: []byte(key), Val: []byte(val)})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
}

// TestStatsMetricsConsistency asserts every STATS field has a /metrics
// counterpart: the drift that used to require cross-referencing
// central=/submitq= by hand now fails the build. The connection-layer
// fields (frames, flushes, pipeline depth) ride the same check.
func TestStatsMetricsConsistency(t *testing.T) {
	e := newTestObs(t)
	put(t, e.srv, "k", "v")

	line := e.stats()
	if !strings.HasPrefix(line, "STATS ") {
		t.Fatalf("statsLine = %q", line)
	}
	var sb strings.Builder
	e.ob.metrics.WritePrometheus(&sb)
	exposition := sb.String()

	fields := strings.Fields(line)[1:]
	if len(fields) < 20 {
		t.Fatalf("expected the full field set (counters+depths+net+windows+slo), got %d: %v", len(fields), fields)
	}
	for _, f := range fields {
		key, _, okSplit := strings.Cut(f, "=")
		if !okSplit {
			t.Fatalf("malformed STATS field %q", f)
		}
		family := metricFamilyForStatsKey(key)
		if family == "" {
			t.Errorf("STATS field %q has no /metrics family mapping", key)
			continue
		}
		// Strip any label selector before matching the TYPE line.
		if i := strings.IndexByte(family, '{'); i >= 0 {
			family = family[:i]
		}
		if !strings.Contains(exposition, "# TYPE "+family+" ") {
			t.Errorf("STATS field %q maps to family %q, absent from /metrics exposition", key, family)
		}
	}
}

// TestStatsNetFields: the connection-layer fields render with a live
// netsrv server and are absent from the bare (ns == nil) line.
func TestStatsNetFields(t *testing.T) {
	e := newTestObs(t)
	line := e.stats()
	for _, want := range []string{
		"conns=0", "pipeline=0", "frames_in=0", "frames_out=0",
		"flushes=0", "text_lines=0", "toolarge=0", "badframes=0",
		"flush_batch_mean=0.00", "flush_batch_p50=0.00", "flush_batch_p99=0.00",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("STATS line missing %q: %s", want, line)
		}
	}
	bare := statsLine(e.srv, nil, nil, nil, nil, nil, nil)
	if strings.Contains(bare, "frames_in=") || strings.Contains(bare, "conns=") {
		t.Errorf("bare STATS line has net fields: %s", bare)
	}
}

// TestStatsLineWindowedFields: rolling quantiles and burn rates show up
// in STATS once traffic has flowed, keyed per configured window.
func TestStatsLineWindowedFields(t *testing.T) {
	e := newTestObs(t)
	for i := 0; i < 20; i++ {
		if resp := e.srv.Do(&netsrv.Request{Op: proto.OpGet, Key: []byte("nope")}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	line := e.stats()
	for _, want := range []string{"p50_1s=", "p99_10s=", "p999_60s=", "burn_short=", "burn_long=", "slo_alerting=0"} {
		if !strings.Contains(line, want) {
			t.Errorf("STATS line missing %q: %s", want, line)
		}
	}
	// Without the obs surface the windowed fields must be absent but
	// the counter fields still render.
	bare := statsLine(e.srv, nil, nil, nil, nil, nil, nil)
	if strings.Contains(bare, "p50_") || strings.Contains(bare, "burn_") {
		t.Errorf("bare STATS line has windowed fields: %s", bare)
	}
	if !strings.Contains(bare, "submitted=") || !strings.Contains(bare, "occ=") {
		t.Errorf("bare STATS line missing counters: %s", bare)
	}
}

// TestStatsShardedFields: with two shards the STATS line carries one
// comma-separated slot per shard, the steals counter renders, and every
// new key maps to a /metrics family (consistency loop above only checks
// the keys present, so sharded keys get their own pass here).
func TestStatsShardedFields(t *testing.T) {
	e := newTestObsSharded(t, 2)
	put(t, e.srv, "k", "v")
	line := e.stats()
	for _, want := range []string{"steals=0", "shardq=0,0", "shardocc=0,0"} {
		if !strings.Contains(line, want) {
			t.Errorf("STATS line missing %q: %s", want, line)
		}
	}
	var sb strings.Builder
	e.ob.metrics.WritePrometheus(&sb)
	exposition := sb.String()
	for _, family := range []string{
		"concord_steals_total",
		`concord_shard_queue_depth{shard="0"}`,
		`concord_shard_queue_depth{shard="1"}`,
		`concord_shard_occupancy{shard="1"}`,
	} {
		if !strings.Contains(exposition, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
}

// TestStatsAdaptiveFields: with a controller the adapt_* fields render
// (policy encoded 0/1, quantum in µs) and each maps to a concord_adapt_*
// family; without one the bare line has none.
func TestStatsAdaptiveFields(t *testing.T) {
	e := newTestObs(t)
	line := e.stats()
	for _, want := range []string{
		"adapt_policy=0", "adapt_quantum_us=", "adapt_cv=",
		"adapt_switches=0", "adapt_quantum_changes=0", "adapt_decisions=0",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("STATS line missing %q: %s", want, line)
		}
	}
	var sb strings.Builder
	e.ob.metrics.WritePrometheus(&sb)
	exposition := sb.String()
	for _, family := range []string{
		"concord_adapt_policy", "concord_adapt_quantum_us", "concord_adapt_cv",
		"concord_adapt_switches_total", "concord_adapt_quantum_changes_total",
		"concord_adapt_decisions_total",
	} {
		if !strings.Contains(exposition, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing %q", family)
		}
	}
	// The controller switching to srpt flips the encoded policy field.
	e.ctrl.Step(adapt.Signals{SvcCount: 64, SvcCV: 5})
	for i := 0; i < 30; i++ {
		e.ctrl.Step(adapt.Signals{SvcCount: 64, SvcCV: 5})
	}
	if line := e.stats(); !strings.Contains(line, "adapt_policy=1") {
		t.Errorf("STATS line did not track the policy switch: %s", line)
	}
	// Every Step above recorded one decision.
	if line := e.stats(); !strings.Contains(line, "adapt_decisions=31") {
		t.Errorf("STATS line did not count decisions: %s", line)
	}
	bare := statsLine(e.srv, nil, nil, nil, nil, nil, nil)
	if strings.Contains(bare, "adapt_") {
		t.Errorf("bare STATS line has adaptive fields: %s", bare)
	}
}

// TestObsTrailerFormat: the trailer is the wire contract concord-load's
// parseObsTrailer consumes — every component key in order, wire phases
// at millisecond precision so sub-µs values stay visible.
func TestObsTrailerFormat(t *testing.T) {
	if got := obsTrailer(live.Response{}); got != "" {
		t.Fatalf("trailer without breakdown = %q, want empty", got)
	}
	resp := live.Response{
		Latency: 100 * time.Microsecond,
		Breakdown: &live.Breakdown{
			Ingress: 1500 * time.Nanosecond,
			Handoff: 10 * time.Microsecond,
			Queue:   20 * time.Microsecond,
			Service: 60 * time.Microsecond,
		},
		Preemptions:  2,
		OnDispatcher: true,
		Done:         time.Now(),
	}
	got := obsTrailer(resp)
	for _, want := range []string{" |OBS h=10.0 ", "q=20.0 ", "s=60.0 ", "p=0.0 ", "i=1.500 ", "e=", "n=2 ", "d=1"} {
		if !strings.Contains(got, want) {
			t.Errorf("trailer missing %q: %q", want, got)
		}
	}
	// Egress accrues from Done to render time: non-negative, and small
	// for a fresh completion.
	var h, q, s, p, i, e float64
	var n, d int
	if _, err := fmt.Sscanf(strings.TrimPrefix(got, " |OBS "),
		"h=%f q=%f s=%f p=%f i=%f e=%f n=%d d=%d", &h, &q, &s, &p, &i, &e, &n, &d); err != nil {
		t.Fatalf("trailer does not scan: %q, %v", got, err)
	}
	if e < 0 {
		t.Errorf("egress %v negative", e)
	}
}

// TestDecisionsControlVerb: DECISIONS replays the controller's recent
// ticks, honors an explicit count, terminates with END, and degrades to
// ERR without -adaptive.
func TestDecisionsControlVerb(t *testing.T) {
	e := newTestObs(t)
	for i := 0; i < 5; i++ {
		e.ctrl.Step(adapt.Signals{SvcCount: 4, SvcCV: 0.5})
	}
	var out strings.Builder
	obsOn := false
	if !e.control(&out, "DECISIONS 3", &obsOn) {
		t.Fatal("DECISIONS not handled")
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 || lines[3] != "END 3" {
		t.Fatalf("DECISIONS 3 = %q", out.String())
	}
	for _, l := range lines[:3] {
		if !strings.Contains(l, "tick=") || !strings.Contains(l, "action=") || !strings.Contains(l, "quantum_us=") {
			t.Errorf("decision line missing fields: %q", l)
		}
	}
	out.Reset()
	if !e.control(&out, "DECISIONS", &obsOn) {
		t.Fatal("bare DECISIONS not handled")
	}
	if !strings.HasSuffix(strings.TrimSpace(out.String()), "END 5") {
		t.Fatalf("bare DECISIONS = %q", out.String())
	}
	out.Reset()
	if !e.control(&out, "DECISIONS nope", &obsOn) {
		t.Fatal("bad count not handled")
	}
	if !strings.HasPrefix(out.String(), "ERR ") {
		t.Fatalf("bad count reply = %q", out.String())
	}
	out.Reset()
	if !serveControl(&out, "DECISIONS", e.srv, e.ns, e.ob, nil, e.sketches, e.ctails, e.replayer, &obsOn) {
		t.Fatal("DECISIONS without controller not handled")
	}
	if !strings.HasPrefix(out.String(), "ERR ") {
		t.Fatalf("no-controller reply = %q", out.String())
	}
}

// TestRuntimeHealthFamilies: the registry carries the Go runtime health
// surface and build-info gauge, and the per-op wire-phase histogram
// components exist alongside the scheduler ones.
func TestRuntimeHealthFamilies(t *testing.T) {
	e := newTestObs(t)
	var sb strings.Builder
	e.ob.metrics.WritePrometheus(&sb)
	exposition := sb.String()
	for _, family := range []string{
		"concord_go_goroutines", "concord_go_gomaxprocs",
		"concord_go_heap_live_bytes", "concord_go_gc_cycles_total",
		"concord_build_info",
	} {
		if !strings.Contains(exposition, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing %q", family)
		}
	}
	if !strings.Contains(exposition, `concord_build_info{`) || !strings.Contains(exposition, `goversion="go`) {
		t.Errorf("build info gauge missing version labels:\n%s", exposition)
	}
	for _, series := range []string{
		`concord_request_us{op="get",component="ingress"}`,
		`concord_request_us{op="get",component="egress"}`,
	} {
		// Histogram series render with suffixed names; check the base
		// label set appears somewhere in the exposition.
		base := strings.Replace(series, "concord_request_us{", `concord_request_us_count{`, 1)
		if !strings.Contains(exposition, base) {
			t.Errorf("/metrics missing per-op wire-phase series %q", base)
		}
	}
}

// TestSLOClasses: the class is the tenant's wire declaration, not a
// property of the op — an undeclared request is standard regardless of
// operation, a declared class rides through untouched, and the tier
// order the cascade queue and controller key on is critical < standard
// < sheddable.
func TestSLOClasses(t *testing.T) {
	for _, tc := range []struct {
		req  *netsrv.Request
		want live.SLOClass
	}{
		{&netsrv.Request{Op: proto.OpGet, Key: []byte("k")}, live.ClassStandard},
		{&netsrv.Request{Op: proto.OpScan}, live.ClassStandard},
		{&netsrv.Request{Op: proto.OpSpin, Spin: 300 * time.Microsecond}, live.ClassStandard},
		{&netsrv.Request{Op: proto.OpGet, Key: []byte("k"), Class: live.ClassCritical}, live.ClassCritical},
		{&netsrv.Request{Op: proto.OpScan, Class: live.ClassSheddable}, live.ClassSheddable},
	} {
		if got := tc.req.SLOClass(); got != tc.want {
			t.Errorf("op 0x%02x class %v: SLOClass %v, want %v", tc.req.Op, tc.req.Class, got, tc.want)
		}
	}
	if !(live.ClassCritical.Tier() < live.ClassStandard.Tier() && live.ClassStandard.Tier() < live.ClassSheddable.Tier()) {
		t.Errorf("tier order: critical %d, standard %d, sheddable %d",
			live.ClassCritical.Tier(), live.ClassStandard.Tier(), live.ClassSheddable.Tier())
	}
}

// TestServiceHints: every op yields a positive hint, SPIN's equals its
// requested duration, and relative order matches relative cost. (Parse
// rejection of bad SPIN durations is covered in internal/netsrv.)
func TestServiceHints(t *testing.T) {
	spin := &netsrv.Request{Op: proto.OpSpin, Spin: 250 * time.Microsecond}
	if spin.ServiceHint() != 250*time.Microsecond {
		t.Fatalf("SPIN hint = %v, want 250µs", spin.ServiceHint())
	}
	get := &netsrv.Request{Op: proto.OpGet, Key: []byte("k")}
	scan := &netsrv.Request{Op: proto.OpScan}
	if get.ServiceHint() <= 0 || scan.ServiceHint() <= 0 {
		t.Fatal("non-positive service hint")
	}
	if !(get.ServiceHint() < scan.ServiceHint()) {
		t.Fatal("GET hinted costlier than SCAN")
	}
}

func TestParseWindows(t *testing.T) {
	got, err := parseWindows("1s, 10s,60s")
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 10 * time.Second, time.Minute}
	if len(got) != len(want) {
		t.Fatalf("parseWindows = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseWindows = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "1s,", "0s", "-5s", "1s,banana"} {
		if _, err := parseWindows(bad); err == nil {
			t.Errorf("parseWindows(%q) accepted", bad)
		}
	}
}

func TestFmtWindow(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{time.Second, "1s"},
		{10 * time.Second, "10s"},
		{time.Minute, "60s"},
		{500 * time.Millisecond, "500ms"},
	} {
		if got := fmtWindow(tc.d); got != tc.want {
			t.Errorf("fmtWindow(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// TestStatsSketchAndRegretFields: real traffic feeds the class sketches
// and the capture ring; after a replay the STATS line carries the
// svc_*/regret_* block and /metrics exposes the matching families.
func TestStatsSketchAndRegretFields(t *testing.T) {
	e := newTestObs(t)
	put(t, e.srv, "k", "v")
	for i := 0; i < 30; i++ {
		if resp := e.srv.Do(&netsrv.Request{Op: proto.OpGet, Key: []byte("k")}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if _, ok := e.replayer.ReplayOnce(); !ok {
		t.Fatal("replay skipped a 31-request window")
	}

	line := e.stats()
	for _, want := range []string{
		"svc_p50_us=", "svc_p99_us=",
		"regret_windows=1", "regret_skipped=0", "shadow_captured=31",
		"regret_best=", "regret=", "regret_ratio_fcfs=",
		"regret_ratio_srpt_hint=", "regret_ratio_srpt_oracle=",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("STATS line missing %q: %s", want, line)
		}
	}
	// Undeclared point ops are ClassStandard: its p50 slot (first of
	// three) must be positive while untouched classes stay 0.
	for _, f := range strings.Fields(line) {
		if !strings.HasPrefix(f, "svc_p50_us=") {
			continue
		}
		vals := strings.Split(strings.TrimPrefix(f, "svc_p50_us="), ",")
		if len(vals) != 3 {
			t.Fatalf("svc_p50_us has %d class slots, want 3: %q", len(vals), f)
		}
		if vals[0] == "0.0" {
			t.Errorf("standard-class p50 still zero after 30 GETs: %q", f)
		}
	}
	var sb strings.Builder
	e.ob.metrics.WritePrometheus(&sb)
	exposition := sb.String()
	for _, family := range []string{
		`concord_svc_time_us{class="standard",quantile="p99"}`,
		`concord_hint_error_count{class="standard"}`,
		`concord_regret_p99_ratio{policy="srpt_oracle"}`,
		`concord_regret_best_policy{policy="fcfs"}`,
		"concord_regret_ratio", "concord_regret_windows_total",
		`concord_shadow_captures_total{result="kept"}`,
	} {
		if !strings.Contains(exposition, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
	// Without -shadow/-obs the bare line must carry none of the block.
	bare := statsLine(e.srv, nil, nil, nil, nil, nil, nil)
	if strings.Contains(bare, "svc_p50_us=") || strings.Contains(bare, "regret") {
		t.Errorf("bare STATS line has sketch/regret fields: %s", bare)
	}
}

// TestShadowControlVerb: SHADOW replays the scored windows newest
// first, honors a count, terminates with END, and degrades to ERR
// without -shadow.
func TestShadowControlVerb(t *testing.T) {
	e := newTestObs(t)
	put(t, e.srv, "k", "v")
	for i := 0; i < 20; i++ {
		if resp := e.srv.Do(&netsrv.Request{Op: proto.OpGet, Key: []byte("k")}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if _, ok := e.replayer.ReplayOnce(); !ok {
		t.Fatal("replay skipped")
	}
	var out strings.Builder
	obsOn := false
	if !e.control(&out, "SHADOW 1", &obsOn) {
		t.Fatal("SHADOW not handled")
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 || lines[1] != "END 1" {
		t.Fatalf("SHADOW 1 = %q", out.String())
	}
	for _, want := range []string{"achieved_p99", "fcfs", "srpt_hint", "srpt_oracle", "best"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("SHADOW line missing %q: %q", want, lines[0])
		}
	}
	out.Reset()
	if !e.control(&out, "SHADOW nope", &obsOn) {
		t.Fatal("bad count not handled")
	}
	if !strings.HasPrefix(out.String(), "ERR ") {
		t.Fatalf("bad count reply = %q", out.String())
	}
	out.Reset()
	if !serveControl(&out, "SHADOW", e.srv, e.ns, e.ob, e.ctrl, e.sketches, e.ctails, nil, &obsOn) {
		t.Fatal("SHADOW without replayer not handled")
	}
	if !strings.HasPrefix(out.String(), "ERR ") {
		t.Fatalf("no-replayer reply = %q", out.String())
	}
}
