package main

import (
	"strings"
	"testing"
	"time"

	"concord/internal/kv"
	"concord/internal/live"
	"concord/internal/obs"
)

// newTestObs boots an in-process server with the full observability
// surface, exactly as main wires it.
func newTestObs(t *testing.T) (*live.Server, *kvObs) {
	return newTestObsSharded(t, 1)
}

func newTestObsSharded(t *testing.T, shards int) (*live.Server, *kvObs) {
	t.Helper()
	const workers = 2
	tracer := obs.NewTracerSharded(workers, shards, 1024)
	slo := obs.NewSLOTracker(obs.SLOConfig{Target: 200 * time.Microsecond, Objective: 0.999})
	tail := obs.NewTailTracker(nil, slo)
	srv := live.New(&kvHandler{store: kv.New(), scanBatch: 64}, live.Options{
		Workers:    workers,
		Shards:     shards,
		PinThreads: false,
		Tracer:     tracer,
		Tail:       tail,
	})
	srv.Start()
	t.Cleanup(srv.Stop)
	return srv, newKVObs(tracer, tail, srv, workers, shards)
}

// TestStatsMetricsConsistency asserts every STATS field has a /metrics
// counterpart: the drift that used to require cross-referencing
// central=/submitq= by hand now fails the build.
func TestStatsMetricsConsistency(t *testing.T) {
	srv, ob := newTestObs(t)
	if resp := srv.Do(request{op: "PUT", key: []byte("k"), value: []byte("v")}); resp.Err != nil {
		t.Fatal(resp.Err)
	}

	line := statsLine(srv, ob)
	if !strings.HasPrefix(line, "STATS ") {
		t.Fatalf("statsLine = %q", line)
	}
	var sb strings.Builder
	ob.metrics.WritePrometheus(&sb)
	exposition := sb.String()

	fields := strings.Fields(line)[1:]
	if len(fields) < 15 {
		t.Fatalf("expected the full field set (counters+depths+windows+slo), got %d: %v", len(fields), fields)
	}
	for _, f := range fields {
		key, _, okSplit := strings.Cut(f, "=")
		if !okSplit {
			t.Fatalf("malformed STATS field %q", f)
		}
		family := metricFamilyForStatsKey(key)
		if family == "" {
			t.Errorf("STATS field %q has no /metrics family mapping", key)
			continue
		}
		if !strings.Contains(exposition, "# TYPE "+family+" ") {
			t.Errorf("STATS field %q maps to family %q, absent from /metrics exposition", key, family)
		}
	}
}

// TestStatsLineWindowedFields: rolling quantiles and burn rates show up
// in STATS once traffic has flowed, keyed per configured window.
func TestStatsLineWindowedFields(t *testing.T) {
	srv, ob := newTestObs(t)
	for i := 0; i < 20; i++ {
		if resp := srv.Do(request{op: "GET", key: []byte("nope")}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	line := statsLine(srv, ob)
	for _, want := range []string{"p50_1s=", "p99_10s=", "p999_60s=", "burn_short=", "burn_long=", "slo_alerting=0"} {
		if !strings.Contains(line, want) {
			t.Errorf("STATS line missing %q: %s", want, line)
		}
	}
	// Without the obs surface the windowed fields must be absent but
	// the counter fields still render.
	bare := statsLine(srv, nil)
	if strings.Contains(bare, "p50_") || strings.Contains(bare, "burn_") {
		t.Errorf("bare STATS line has windowed fields: %s", bare)
	}
	if !strings.Contains(bare, "submitted=") || !strings.Contains(bare, "occ=") {
		t.Errorf("bare STATS line missing counters: %s", bare)
	}
}

// TestStatsShardedFields: with two shards the STATS line carries one
// comma-separated slot per shard, the steals counter renders, and every
// new key maps to a /metrics family (consistency loop above only checks
// the keys present, so sharded keys get their own pass here).
func TestStatsShardedFields(t *testing.T) {
	srv, ob := newTestObsSharded(t, 2)
	if resp := srv.Do(request{op: "PUT", key: []byte("k"), value: []byte("v")}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	line := statsLine(srv, ob)
	for _, want := range []string{"steals=0", "shardq=0,0", "shardocc=0,0"} {
		if !strings.Contains(line, want) {
			t.Errorf("STATS line missing %q: %s", want, line)
		}
	}
	var sb strings.Builder
	ob.metrics.WritePrometheus(&sb)
	exposition := sb.String()
	for _, family := range []string{
		"concord_steals_total",
		`concord_shard_queue_depth{shard="0"}`,
		`concord_shard_queue_depth{shard="1"}`,
		`concord_shard_occupancy{shard="1"}`,
	} {
		if !strings.Contains(exposition, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
}

// TestServiceHints: every op yields a positive hint, SPIN's equals its
// parsed duration, and relative order matches relative cost.
func TestServiceHints(t *testing.T) {
	spin, err := parse("SPIN 250")
	if err != nil {
		t.Fatal(err)
	}
	if spin.ServiceHint() != 250*time.Microsecond {
		t.Fatalf("SPIN hint = %v, want 250µs", spin.ServiceHint())
	}
	if _, err := parse("SPIN banana"); err == nil {
		t.Fatal("bad SPIN duration accepted at parse time")
	}
	get, _ := parse("GET k")
	scan, _ := parse("SCAN")
	if get.ServiceHint() <= 0 || scan.ServiceHint() <= 0 {
		t.Fatal("non-positive service hint")
	}
	if !(get.ServiceHint() < scan.ServiceHint()) {
		t.Fatal("GET hinted costlier than SCAN")
	}
}

func TestParseWindows(t *testing.T) {
	got, err := parseWindows("1s, 10s,60s")
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 10 * time.Second, time.Minute}
	if len(got) != len(want) {
		t.Fatalf("parseWindows = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseWindows = %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "1s,", "0s", "-5s", "1s,banana"} {
		if _, err := parseWindows(bad); err == nil {
			t.Errorf("parseWindows(%q) accepted", bad)
		}
	}
}

func TestFmtWindow(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want string
	}{
		{time.Second, "1s"},
		{10 * time.Second, "10s"},
		{time.Minute, "60s"},
		{500 * time.Millisecond, "500ms"},
	} {
		if got := fmtWindow(tc.d); got != tc.want {
			t.Errorf("fmtWindow(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}
