// Command concordc is the Concord "compiler": it instruments Go source
// files with cooperative preemption probes (ctx.Poll() at function
// entries and loop back-edges), the role the paper's LLVM pass plays for
// C/C++ (§4.3).
//
// Usage:
//
//	concordc file.go            # print instrumented source to stdout
//	concordc -w file.go dir/    # rewrite files in place
//	concordc -suffix Context -method Probe file.go
//	concordc -every 64 file.go  # amortized loop probes (§4.3 unrolling)
//
// Functions are instrumented when they take a `*...Ctx` parameter;
// annotate a function with `//concord:nopreempt` to exclude it.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"concord/internal/instrument"
)

func main() {
	var (
		write  = flag.Bool("w", false, "rewrite files in place instead of printing")
		suffix = flag.String("suffix", "Ctx", "context parameter type-name suffix")
		method = flag.String("method", "Poll", "probe method name")
		every  = flag.Int("every", 0, "amortize loop probes: poll once per N iterations (0 = every iteration)")
		quiet  = flag.Bool("q", false, "suppress per-file probe counts")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opts := instrument.Options{CtxTypeSuffix: *suffix, PollMethod: *method, LoopEvery: *every}

	exit := 0
	for _, arg := range flag.Args() {
		files, err := collect(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "concordc: %v\n", err)
			exit = 1
			continue
		}
		for _, path := range files {
			if err := processFile(path, opts, *write, *quiet); err != nil {
				fmt.Fprintf(os.Stderr, "concordc: %v\n", err)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

// collect expands an argument into Go files (recursing into directories,
// skipping tests and vendored code).
func collect(arg string) ([]string, error) {
	info, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{arg}, nil
	}
	var out []string
	err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

func processFile(path string, opts instrument.Options, write, quiet bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := instrument.File(path, src, opts)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "%s: %d probes in %d functions\n", path, res.Probes, res.Functions)
	}
	if write {
		if res.Probes == 0 {
			return nil // untouched
		}
		return os.WriteFile(path, res.Source, 0o644)
	}
	_, err = os.Stdout.Write(res.Source)
	return err
}
