// Server-side depth sampling: a side connection polls the kvd STATS
// line at -statsevery, so a load run records how the dispatcher shards
// behaved (per-shard queue depth and occupancy, cross-shard steals)
// alongside the client-observed latencies. Samples go to -statscsv as a
// time series with one column per shard and are condensed into the
// shard_depths section of -summaryjson.
package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// statsSample is one parsed STATS reply.
type statsSample struct {
	atMS      float64 // time since poller start
	submitted uint64
	completed uint64
	steals    uint64
	central   int
	submitq   int
	shardQ    []int
	shardOcc  []int
}

// parseStatsLine parses a kvd STATS reply into a sample. Unknown keys
// are ignored so the poller tolerates server-side additions; absent
// shard keys (an older server) leave the slices nil.
func parseStatsLine(line string) (statsSample, error) {
	var s statsSample
	line = strings.TrimSpace(line)
	rest, ok := strings.CutPrefix(line, "STATS")
	if !ok {
		return s, fmt.Errorf("not a STATS reply: %q", line)
	}
	for _, f := range strings.Fields(rest) {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return s, fmt.Errorf("malformed STATS field %q", f)
		}
		switch key {
		case "submitted":
			s.submitted, _ = strconv.ParseUint(val, 10, 64)
		case "completed":
			s.completed, _ = strconv.ParseUint(val, 10, 64)
		case "steals":
			s.steals, _ = strconv.ParseUint(val, 10, 64)
		case "central":
			s.central, _ = strconv.Atoi(val)
		case "submitq":
			s.submitq, _ = strconv.Atoi(val)
		case "shardq":
			s.shardQ = parseIntList(val)
		case "shardocc":
			s.shardOcc = parseIntList(val)
		}
	}
	return s, nil
}

func parseIntList(val string) []int {
	parts := strings.Split(val, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}

// statsPoller samples STATS on its own connection until stopped, so the
// measurement never competes with load-bearing connections for a reply
// slot.
type statsPoller struct {
	samples []statsSample
	err     error
	stop    chan struct{}
	done    chan struct{}
}

func startStatsPoller(addr string, every time.Duration) *statsPoller {
	p := &statsPoller{stop: make(chan struct{}), done: make(chan struct{})}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		p.err = err
		close(p.done)
		return p
	}
	go func() {
		defer close(p.done)
		defer conn.Close()
		rw := bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))
		start := time.Now()
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-tick.C:
			}
			fmt.Fprintln(rw, "STATS")
			if err := rw.Flush(); err != nil {
				p.err = err
				return
			}
			line, err := rw.ReadString('\n')
			if err != nil {
				p.err = err
				return
			}
			s, err := parseStatsLine(line)
			if err != nil {
				p.err = err
				return
			}
			s.atMS = float64(time.Since(start)) / float64(time.Millisecond)
			p.samples = append(p.samples, s)
		}
	}()
	return p
}

// finish stops the poller and returns its samples (nil with the error
// when polling failed).
func (p *statsPoller) finish() ([]statsSample, error) {
	close(p.stop)
	<-p.done
	if p.err != nil {
		return nil, p.err
	}
	return p.samples, nil
}

// shardWidth is the widest shard slice seen across samples (constant in
// practice; defensive against a mid-run server restart).
func shardWidth(samples []statsSample) int {
	w := 0
	for _, s := range samples {
		if len(s.shardQ) > w {
			w = len(s.shardQ)
		}
		if len(s.shardOcc) > w {
			w = len(s.shardOcc)
		}
	}
	return w
}

// writeStatsCSV renders the depth time series: one row per sample, one
// shardq/shardocc column pair per shard.
func writeStatsCSV(w io.Writer, samples []statsSample) error {
	shards := shardWidth(samples)
	cols := []string{"time_ms", "submitted", "completed", "steals", "central", "submitq"}
	for i := 0; i < shards; i++ {
		cols = append(cols, fmt.Sprintf("shardq%d", i))
	}
	for i := 0; i < shards; i++ {
		cols = append(cols, fmt.Sprintf("shardocc%d", i))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	at := func(vals []int, i int) int {
		if i < len(vals) {
			return vals[i]
		}
		return 0
	}
	for _, s := range samples {
		row := []string{
			fmt.Sprintf("%.1f", s.atMS),
			strconv.FormatUint(s.submitted, 10),
			strconv.FormatUint(s.completed, 10),
			strconv.FormatUint(s.steals, 10),
			strconv.Itoa(s.central),
			strconv.Itoa(s.submitq),
		}
		for i := 0; i < shards; i++ {
			row = append(row, strconv.Itoa(at(s.shardQ, i)))
		}
		for i := 0; i < shards; i++ {
			row = append(row, strconv.Itoa(at(s.shardOcc, i)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// shardDepthStats is the -summaryjson shard_depths section: per-shard
// central-queue and occupancy statistics over the polled samples, plus
// the steal counter's growth across the run.
type shardDepthStats struct {
	Shards       int       `json:"shards"`
	Samples      int       `json:"samples"`
	Steals       uint64    `json:"steals"`
	ShardQMean   []float64 `json:"shardq_mean"`
	ShardQMax    []int     `json:"shardq_max"`
	ShardOccMean []float64 `json:"shardocc_mean"`
	CentralMean  float64   `json:"central_mean"`
	CentralMax   int       `json:"central_max"`
	SubmitqMean  float64   `json:"submitq_mean"`
}

// summarizeShardDepths condenses the sample series; nil when there is
// nothing to report.
func summarizeShardDepths(samples []statsSample) *shardDepthStats {
	if len(samples) == 0 {
		return nil
	}
	shards := shardWidth(samples)
	out := &shardDepthStats{
		Shards:       shards,
		Samples:      len(samples),
		ShardQMean:   make([]float64, shards),
		ShardQMax:    make([]int, shards),
		ShardOccMean: make([]float64, shards),
	}
	for _, s := range samples {
		out.CentralMean += float64(s.central)
		out.SubmitqMean += float64(s.submitq)
		if s.central > out.CentralMax {
			out.CentralMax = s.central
		}
		for i := 0; i < shards; i++ {
			if i < len(s.shardQ) {
				out.ShardQMean[i] += float64(s.shardQ[i])
				if s.shardQ[i] > out.ShardQMax[i] {
					out.ShardQMax[i] = s.shardQ[i]
				}
			}
			if i < len(s.shardOcc) {
				out.ShardOccMean[i] += float64(s.shardOcc[i])
			}
		}
	}
	n := float64(len(samples))
	out.CentralMean /= n
	out.SubmitqMean /= n
	for i := 0; i < shards; i++ {
		out.ShardQMean[i] /= n
		out.ShardOccMean[i] /= n
	}
	first, last := samples[0], samples[len(samples)-1]
	out.Steals = last.steals - first.steals
	return out
}
