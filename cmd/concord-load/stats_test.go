package main

import (
	"strings"
	"testing"
)

func TestParseStatsLine(t *testing.T) {
	line := "STATS submitted=10 completed=9 rejected=0 expired=0 aborted=0 " +
		"preemptions=3 dispatcher_run=1 steals=4 central=2 submitq=1 occ=1,0 " +
		"shardq=2,0 shardocc=1,0 p50_1s=3.0"
	s, err := parseStatsLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if s.submitted != 10 || s.completed != 9 || s.steals != 4 {
		t.Fatalf("counters = %+v", s)
	}
	if s.central != 2 || s.submitq != 1 {
		t.Fatalf("depths = %+v", s)
	}
	if len(s.shardQ) != 2 || s.shardQ[0] != 2 || s.shardQ[1] != 0 {
		t.Fatalf("shardQ = %v", s.shardQ)
	}
	if len(s.shardOcc) != 2 || s.shardOcc[0] != 1 {
		t.Fatalf("shardOcc = %v", s.shardOcc)
	}
	if _, err := parseStatsLine("VALUE nope"); err == nil {
		t.Fatal("non-STATS line accepted")
	}
}

func TestWriteStatsCSVShardColumns(t *testing.T) {
	samples := []statsSample{
		{atMS: 100, submitted: 5, completed: 4, steals: 1, central: 3, submitq: 1,
			shardQ: []int{2, 1}, shardOcc: []int{1, 0}},
		{atMS: 200, submitted: 9, completed: 9, steals: 2, central: 0, submitq: 0,
			shardQ: []int{0, 0}, shardOcc: []int{0, 0}},
	}
	var sb strings.Builder
	if err := writeStatsCSV(&sb, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2", len(lines))
	}
	wantHeader := "time_ms,submitted,completed,steals,central,submitq,shardq0,shardq1,shardocc0,shardocc1"
	if lines[0] != wantHeader {
		t.Fatalf("header = %q, want %q", lines[0], wantHeader)
	}
	if lines[1] != "100.0,5,4,1,3,1,2,1,1,0" {
		t.Fatalf("row 1 = %q", lines[1])
	}
}

func TestSummarizeShardDepths(t *testing.T) {
	if got := summarizeShardDepths(nil); got != nil {
		t.Fatalf("empty sample set summarized: %+v", got)
	}
	samples := []statsSample{
		{steals: 2, central: 4, submitq: 2, shardQ: []int{4, 0}, shardOcc: []int{2, 0}},
		{steals: 8, central: 0, submitq: 0, shardQ: []int{0, 2}, shardOcc: []int{0, 2}},
	}
	ds := summarizeShardDepths(samples)
	if ds.Shards != 2 || ds.Samples != 2 {
		t.Fatalf("shape = %+v", ds)
	}
	if ds.Steals != 6 {
		t.Fatalf("steals delta = %d, want 6", ds.Steals)
	}
	if ds.ShardQMean[0] != 2 || ds.ShardQMean[1] != 1 {
		t.Fatalf("shardq mean = %v", ds.ShardQMean)
	}
	if ds.ShardQMax[0] != 4 || ds.ShardQMax[1] != 2 {
		t.Fatalf("shardq max = %v", ds.ShardQMax)
	}
	if ds.CentralMean != 2 || ds.CentralMax != 4 {
		t.Fatalf("central = %+v", ds)
	}
}
