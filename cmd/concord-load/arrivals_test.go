package main

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestArrivalsMeanRate: all three processes must offer the same mean
// rate — burstiness reshapes the gaps, not the load.
func TestArrivalsMeanRate(t *testing.T) {
	const rate = 10000.0
	const n = 200000
	for _, name := range []string{"poisson", "gamma", "bimodal"} {
		gen, err := arrivalsFor(name, rate)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		var sum time.Duration
		for i := 0; i < n; i++ {
			sum += gen(rng)
		}
		mean := float64(sum) / n
		want := float64(time.Second) / rate
		if mean < 0.9*want || mean > 1.1*want {
			t.Errorf("%s: mean gap %.1fµs, want %.1fµs ±10%%",
				name, mean/1e3, want/1e3)
		}
	}
	if _, err := arrivalsFor("fractal", rate); err == nil {
		t.Error("unknown process accepted")
	}
}

// TestGammaArrivalsBursty: the gamma process must deliver CV ≈ 2.0 —
// the point of the generator; a CV near 1 would be Poisson in disguise.
func TestGammaArrivalsBursty(t *testing.T) {
	gen, err := arrivalsFor("gamma", 10000)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	gaps := make([]float64, n)
	var sum float64
	for i := range gaps {
		gaps[i] = float64(gen(rng))
		sum += gaps[i]
	}
	mean := sum / n
	var ss float64
	for _, g := range gaps {
		ss += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(ss/n) / mean
	if cv < 1.7 || cv > 2.3 {
		t.Fatalf("gamma interarrival CV = %.2f, want ≈ 2.0", cv)
	}
}

func TestClassPicker(t *testing.T) {
	if pick, err := classPickerFor(""); err != nil || pick != nil {
		t.Fatalf("empty spec: picker non-nil or err=%v, want nil/nil", err)
	}
	pick, err := classPickerFor("critical")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if name, code := pick(rng); name != "critical" || code != 1 {
		t.Fatalf("pinned class = %s/%d, want critical/1", name, code)
	}

	pick, err = classPickerFor("critical:1,standard:6,sheddable:3")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		name, code := pick(rng)
		if sloClasses[name] != code {
			t.Fatalf("picker returned mismatched pair %s/%d", name, code)
		}
		counts[name]++
	}
	for name, wantFrac := range map[string]float64{"critical": 0.1, "standard": 0.6, "sheddable": 0.3} {
		frac := float64(counts[name]) / n
		if math.Abs(frac-wantFrac) > 0.02 {
			t.Errorf("%s drawn %.3f of the time, want %.2f", name, frac, wantFrac)
		}
	}

	for _, bad := range []string{"premium", "critical:x", "critical:-1", "critical:0"} {
		if _, err := classPickerFor(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestShedCountedApart: SHED replies land in their own tally (and count
// as non-completions), in both the text-token and binary-status paths.
func TestShedCountedApart(t *testing.T) {
	if !failed("SHED\n") {
		t.Fatal("SHED reply not treated as a non-completion")
	}
	var f failures
	f.record(nil, "SHED\n")
	f.record(nil, "OVERLOADED\n")
	if f.shed.Load() != 1 || f.overloaded.Load() != 1 || f.other.Load() != 0 {
		t.Fatalf("counts shed=%d overloaded=%d other=%d, want 1/1/0",
			f.shed.Load(), f.overloaded.Load(), f.other.Load())
	}
	if f.total() != 2 {
		t.Fatalf("total = %d, want 2", f.total())
	}
}
