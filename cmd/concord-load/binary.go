// Binary-protocol client: pipelined frames over a small connection
// fleet. Each connection keeps -pipeline requests in flight, identified
// by slot index (the wire request id), with one reader goroutine
// matching out-of-order responses back to their launch records — the
// client half of the massive-fan-in path in internal/netsrv.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"concord/internal/proto"
	"concord/internal/trace"
)

// binFleet is the pool of pipelined binary connections. A free slot is
// required to launch a request, so conns×depth bounds in-flight exactly
// like the text pool bounds it at conns×1.
type binFleet struct {
	conns []*binConn
	avail chan *binSlot // capacity conns×depth; releases never block
	lost  atomic.Int64  // slots retired by broken connections
	total int
	wg    sync.WaitGroup

	lg    *trace.Log
	hist  *trace.Histogram
	fails *failures
}

type binConn struct {
	fleet  *binFleet
	conn   net.Conn
	mu     sync.Mutex // guards slot state and broken
	wmu    sync.Mutex // serializes frame writes; never held with mu
	wbuf   []byte
	slots  []binSlot
	broken bool
}

// binSlot is one in-flight request's bookkeeping; its index within the
// connection is the wire request id, so response matching is an array
// lookup.
type binSlot struct {
	bc    *binConn
	id    uint64
	o     op
	start time.Time
	busy  bool
}

func dialBinary(addr string, nconns, depth int, lg *trace.Log, hist *trace.Histogram, fails *failures) (*binFleet, error) {
	f := &binFleet{
		total: nconns * depth,
		avail: make(chan *binSlot, nconns*depth),
		lg:    lg,
		hist:  hist,
		fails: fails,
	}
	for i := 0; i < nconns; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		bc := &binConn{fleet: f, conn: c, slots: make([]binSlot, depth)}
		for j := range bc.slots {
			bc.slots[j] = binSlot{bc: bc, id: uint64(j)}
			f.avail <- &bc.slots[j]
		}
		f.conns = append(f.conns, bc)
		f.wg.Add(1)
		go bc.readLoop()
	}
	return f, nil
}

// launch blocks until a slot is free, then writes one pipelined frame.
// The response is recorded by the owning connection's reader; a write
// failure is recorded here and the slot retired.
func (f *binFleet) launch(o op) {
	if int(f.lost.Load()) >= f.total {
		log.Fatal("all binary connections broken")
	}
	s := <-f.avail
	bc := s.bc
	bc.mu.Lock()
	if bc.broken {
		bc.mu.Unlock()
		f.fails.other.Add(1)
		f.lost.Add(1)
		return
	}
	s.o = o
	s.start = time.Now()
	s.busy = true
	bc.mu.Unlock()

	bc.wmu.Lock()
	bc.wbuf = bc.wbuf[:0]
	// AppendClassRequest canonicalizes: class 0 (the classless default)
	// still rides the v1 frame, so un-classed runs are byte-identical.
	if o.code == proto.OpSpin {
		bc.wbuf = proto.AppendSpinClassRequest(bc.wbuf, o.slo, s.id, o.spinUS)
	} else {
		bc.wbuf = proto.AppendClassRequest(bc.wbuf, o.code, o.slo, s.id, o.key, o.val)
	}
	_, err := bc.conn.Write(bc.wbuf)
	bc.wmu.Unlock()
	if err != nil {
		bc.mu.Lock()
		bc.broken = true
		s.busy = false
		bc.mu.Unlock()
		f.fails.record(err, "")
		f.lost.Add(1)
	}
}

func (bc *binConn) readLoop() {
	f := bc.fleet
	defer f.wg.Done()
	rr := proto.NewRespReader(bc.conn, 1<<15)
	for {
		resp, err := rr.Next()
		if err != nil {
			bc.fail(err)
			return
		}
		idx := int(resp.ID)
		if idx < 0 || idx >= len(bc.slots) {
			bc.fail(fmt.Errorf("response id %d out of range", resp.ID))
			return
		}
		s := &bc.slots[idx]
		bc.mu.Lock()
		if !s.busy {
			bc.mu.Unlock()
			bc.fail(fmt.Errorf("duplicate response for id %d", resp.ID))
			return
		}
		o, start := s.o, s.start
		s.busy = false
		bc.mu.Unlock()
		lat := time.Since(start)
		switch resp.Status {
		case proto.StOK, proto.StValue, proto.StNotFound, proto.StCount:
			f.lg.Add(trace.Record{
				Class:     o.class,
				ServiceUS: o.serviceUS,
				SojournUS: float64(lat) / float64(time.Microsecond),
			})
			f.hist.ObserveDuration(lat)
		default:
			f.fails.record(nil, proto.StatusString(resp.Status))
		}
		f.avail <- s
	}
}

// fail marks the connection broken and retires its in-flight slots as
// failures; free slots still in avail are retired lazily at their next
// launch. A clean EOF with nothing in flight (shutdown) records nothing.
func (bc *binConn) fail(err error) {
	f := bc.fleet
	bc.mu.Lock()
	bc.broken = true
	nbusy := 0
	for i := range bc.slots {
		if bc.slots[i].busy {
			bc.slots[i].busy = false
			nbusy++
		}
	}
	bc.mu.Unlock()
	if nbusy == 0 && err == io.EOF {
		return
	}
	for i := 0; i < nbusy; i++ {
		f.fails.record(err, "")
	}
	f.lost.Add(int64(nbusy))
}

// drain waits for every live slot to come home — i.e. for all in-flight
// responses. Slots can be retired concurrently by breaking connections,
// so the target is re-checked on a timeout rather than waited for
// blindly.
func (f *binFleet) drain() {
	collected := 0
	for collected < f.total-int(f.lost.Load()) {
		select {
		case <-f.avail:
			collected++
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// close tears down the fleet: connections first, then the readers they
// unblock.
func (f *binFleet) close() {
	for _, bc := range f.conns {
		bc.conn.Close()
	}
	f.wg.Wait()
}
