// Command concord-load is an open-loop Poisson load generator for
// concord-kvd, in the style of the paper's client (§5.1): requests
// arrive on a Poisson process regardless of completions, latency is
// measured end to end, and the report shows slowdown percentiles
// (sojourn over intended service time) plus a latency histogram.
//
// Workload mixes mirror §5.3:
//
//	-mix 5050   50% GET, 50% SCAN
//	-mix zippy  78% GET, 13% PUT, 6% DEL, 3% SCAN
//	-mix get    100% GET
//	-mix spin   synthetic spins, bimodal 99.5% x 5µs / 0.5% x 500µs
//
// -class stamps an SLO class on every request (a fixed class or a
// weighted mix like critical:1,standard:6,sheddable:3): text requests
// gain an '@class' token, binary requests ride the v2 class frame, and
// every per-class report splits by "sloclass/opclass". SHED replies —
// sheddable work dropped by class admission — are counted apart from
// hard failures. -arrivals picks the interarrival process: poisson
// (CV=1), gamma (CV≈2.0 bursts), or bimodal on/off phases at the same
// mean rate.
//
// By default requests ride the text protocol, one lockstep request per
// pooled connection. With -proto binary each connection instead streams
// pipelined binary frames, keeping -pipeline requests in flight and
// matching out-of-order responses by request id — the same path
// concord-kvd's fan-in layer is built for, at a fraction of the
// per-request syscall and allocation cost.
//
// With -breakdown (server started with -obs) every response carries a
// server-measured latency decomposition; the report adds a
// Table-1-style per-class component table (p50/p99/p99.9 of queueing,
// service, preemption, hand-off, plus the wire phases ingress and
// egress), a client-vs-server latency-gap table attributing the
// difference between client-measured sojourn and the server's
// wire-to-wire total to the network and client scheduling, and the CSV
// gains component columns.
//
// With -statsevery a side connection polls the server's STATS line and
// records per-shard queue depth and occupancy plus the cross-shard
// steal counter: -statscsv writes the time series (one shardq/shardocc
// column per shard) and -summaryjson gains a shard_depths section.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"concord/internal/proto"
	"concord/internal/trace"
)

// failures tallies unsuccessful requests by kind; incremented from
// per-request goroutines. Shed requests (class admission dropping
// sheddable work under overload) are counted apart from hard failures:
// they are the multi-tenancy design working, not the server failing.
type failures struct {
	deadline   atomic.Int64 // server replied DEADLINE
	overloaded atomic.Int64 // server replied OVERLOADED
	stopped    atomic.Int64 // server replied STOPPED
	shed       atomic.Int64 // server replied SHED (sheddable class dropped)
	other      atomic.Int64 // transport errors and ERR replies
	logged     atomic.Int64
}

func (f *failures) total() int64 {
	return f.deadline.Load() + f.overloaded.Load() + f.stopped.Load() + f.shed.Load() + f.other.Load()
}

// record classifies one failed request; the first few are logged.
func (f *failures) record(err error, resp string) {
	switch {
	case err == nil && strings.HasPrefix(resp, "DEADLINE"):
		f.deadline.Add(1)
	case err == nil && strings.HasPrefix(resp, "OVERLOADED"):
		f.overloaded.Add(1)
	case err == nil && strings.HasPrefix(resp, "STOPPED"):
		f.stopped.Add(1)
	case err == nil && strings.HasPrefix(resp, "SHED"):
		f.shed.Add(1)
		return // shedding is expected under overload; don't spam the log
	default:
		f.other.Add(1)
	}
	if f.logged.Add(1) <= 5 {
		log.Printf("request failed: %v %s", err, strings.TrimSpace(resp))
	}
}

// failed reports whether a reply line is a failure token.
func failed(resp string) bool {
	return strings.HasPrefix(resp, "ERR") ||
		strings.HasPrefix(resp, "DEADLINE") ||
		strings.HasPrefix(resp, "OVERLOADED") ||
		strings.HasPrefix(resp, "STOPPED") ||
		strings.HasPrefix(resp, "SHED")
}

// op is one generated request in both wire forms: line is the text
// protocol rendering, code/key/val/spinUS the binary frame fields. slo
// is the SLO class byte (0 = standard/classless, matching the wire
// default) stamped by the -class picker after the mix generates the op.
type op struct {
	line      string
	class     string
	serviceUS float64
	code      byte
	key, val  []byte
	spinUS    uint32
	slo       byte
}

type mixer func(r *rand.Rand) op

func mixFor(name string, keys int) (mixer, error) {
	key := func(r *rand.Rand) string {
		return fmt.Sprintf("key%08d", r.Intn(keys))
	}
	get := func(k string) op {
		return op{line: "GET " + k, class: "GET", serviceUS: 1, code: proto.OpGet, key: []byte(k)}
	}
	scan := op{line: "SCAN", class: "SCAN", serviceUS: 2000, code: proto.OpScan}
	switch name {
	case "5050":
		return func(r *rand.Rand) op {
			if r.Intn(2) == 0 {
				return get(key(r))
			}
			return scan
		}, nil
	case "zippy":
		val := strings.Repeat("w", 64)
		return func(r *rand.Rand) op {
			switch v := r.Float64(); {
			case v < 0.78:
				return get(key(r))
			case v < 0.91:
				k := key(r)
				return op{line: "PUT " + k + " " + val, class: "PUT", serviceUS: 3,
					code: proto.OpPut, key: []byte(k), val: []byte(val)}
			case v < 0.97:
				k := key(r)
				return op{line: "DEL " + k, class: "DEL", serviceUS: 3, code: proto.OpDel, key: []byte(k)}
			default:
				return scan
			}
		}, nil
	case "get":
		return func(r *rand.Rand) op {
			return get(key(r))
		}, nil
	case "spin":
		short := op{line: "SPIN 5", class: "short", serviceUS: 5, code: proto.OpSpin, spinUS: 5}
		long := op{line: "SPIN 500", class: "long", serviceUS: 500, code: proto.OpSpin, spinUS: 500}
		return func(r *rand.Rand) op {
			if r.Float64() < 0.995 {
				return short
			}
			return long
		}, nil
	default:
		return nil, fmt.Errorf("unknown mix %q", name)
	}
}

// sloClasses maps -class names to wire class bytes: the v2 binary
// frame's class field and the '@name' text token. Values mirror
// internal/live.SLOClass (standard is the zero value, so standard
// requests still ride the v1 frame).
var sloClasses = map[string]byte{"standard": 0, "critical": 1, "sheddable": 2}

// classPickerFor parses the -class spec into a per-request picker.
// A bare class name pins every request to that class; a weighted list
// like "critical:1,standard:6,sheddable:3" draws each request's class
// proportionally. Empty spec returns nil: requests stay classless.
func classPickerFor(spec string) (func(r *rand.Rand) (string, byte), error) {
	if spec == "" {
		return nil, nil
	}
	type entry struct {
		name   string
		code   byte
		weight float64
	}
	var entries []entry
	var total float64
	for _, part := range strings.Split(spec, ",") {
		name, w, weighted := strings.Cut(strings.TrimSpace(part), ":")
		code, ok := sloClasses[name]
		if !ok {
			return nil, fmt.Errorf("-class: unknown SLO class %q (have critical, standard, sheddable)", name)
		}
		weight := 1.0
		if weighted {
			v, err := strconv.ParseFloat(w, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("-class: bad weight %q for %s", w, name)
			}
			weight = v
		}
		entries = append(entries, entry{name, code, weight})
		total += weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("-class: weights sum to zero")
	}
	return func(r *rand.Rand) (string, byte) {
		v := r.Float64() * total
		for _, e := range entries {
			if v -= e.weight; v < 0 {
				return e.name, e.code
			}
		}
		last := entries[len(entries)-1]
		return last.name, last.code
	}, nil
}

// arrivalsFor builds the interarrival-gap generator for -arrivals. All
// three processes offer the same mean rate; they differ in burstiness:
//
//	poisson  exponential gaps, CV = 1 (the open-loop baseline)
//	gamma    gamma-distributed gaps with CV ≈ 2.0 (shape k = 1/CV² =
//	         0.25): heavy clustering with long lulls, the classic
//	         "bursty datacenter arrivals" stressor
//	bimodal  on/off phases — 200ms bursts at 4× the rate alternating
//	         with 800ms valleys at 0.25×, preserving the mean
//	         (0.2·4 + 0.8·0.25 = 1)
//
// The returned closure is stateful (bimodal tracks its phase) and must
// be called from a single goroutine — which the arrival loop is.
func arrivalsFor(name string, rate float64) (func(r *rand.Rand) time.Duration, error) {
	meanGap := float64(time.Second) / rate
	switch name {
	case "poisson":
		return func(r *rand.Rand) time.Duration {
			return time.Duration(r.ExpFloat64() * meanGap)
		}, nil
	case "gamma":
		const shape = 0.25 // CV = 1/sqrt(k) = 2.0
		scale := meanGap / shape
		return func(r *rand.Rand) time.Duration {
			return time.Duration(sampleGamma(r, shape) * scale)
		}, nil
	case "bimodal":
		const (
			onDur, offDur   = 200 * time.Millisecond, 800 * time.Millisecond
			onMult, offMult = 4.0, 0.25
		)
		phaseLeft, on := onDur, true
		return func(r *rand.Rand) time.Duration {
			mult := offMult
			if on {
				mult = onMult
			}
			gap := time.Duration(r.ExpFloat64() * meanGap / mult)
			phaseLeft -= gap
			for phaseLeft <= 0 {
				on = !on
				if on {
					phaseLeft += onDur
				} else {
					phaseLeft += offDur
				}
			}
			return gap
		}, nil
	default:
		return nil, fmt.Errorf("-arrivals: unknown process %q (have poisson, gamma, bimodal)", name)
	}
}

// sampleGamma draws from Gamma(shape k, scale 1) via Marsaglia–Tsang
// (2000). Their method needs k ≥ 1; for k < 1 it draws Gamma(k+1) and
// applies the standard U^(1/k) boost.
func sampleGamma(r *rand.Rand, k float64) float64 {
	if k < 1 {
		return sampleGamma(r, k+1) * math.Pow(r.Float64(), 1/k)
	}
	d := k - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server address")
		rate     = flag.Float64("rate", 2000, "offered load, requests/second")
		duration = flag.Duration("duration", 10*time.Second, "run length")
		conns    = flag.Int("conns", 16, "connection pool size (max in-flight is conns, or conns*pipeline with -proto binary)")
		protoOpt = flag.String("proto", "text", "wire protocol: text (lockstep lines) or binary (pipelined frames)")
		pipeline = flag.Int("pipeline", 16, "per-connection pipeline depth (binary protocol only)")
		mix      = flag.String("mix", "zippy", "workload mix: 5050, zippy, get, spin")
		classes  = flag.String("class", "", "SLO class per request: a class name (critical, standard, sheddable) or a weighted mix like critical:1,standard:6,sheddable:3; empty sends classless (standard) requests")
		arrivals = flag.String("arrivals", "poisson", "interarrival process: poisson (CV=1), gamma (bursty, CV=2.0), bimodal (200ms 4x bursts / 800ms 0.25x valleys)")
		keys     = flag.Int("keys", 15000, "key space (must match the server)")
		seed     = flag.Int64("seed", 1, "random seed")
		csvPath  = flag.String("csv", "", "write per-request records to this CSV file")
		warmup   = flag.Float64("warmup", 0.1, "fraction of samples to discard")
		brkdown  = flag.Bool("breakdown", false, "request per-request latency breakdowns (server must run with -obs) and print a per-component table")
		sumJSON  = flag.String("summaryjson", "", "write the end-of-run summary as JSON to this file (machine-readable mirror of the stdout report)")
		statsEvr = flag.Duration("statsevery", 0, "poll server STATS on a side connection at this interval: per-shard depths and steals (0 disables)")
		statsCSV = flag.String("statscsv", "", "write the polled STATS depth time series as CSV, one shardq/shardocc column per shard (needs -statsevery)")
	)
	flag.Parse()
	if *statsCSV != "" && *statsEvr <= 0 {
		log.Fatal("-statscsv needs -statsevery")
	}

	gen, err := mixFor(*mix, *keys)
	if err != nil {
		log.Fatal(err)
	}
	pickClass, err := classPickerFor(*classes)
	if err != nil {
		log.Fatal(err)
	}
	nextGap, err := arrivalsFor(*arrivals, *rate)
	if err != nil {
		log.Fatal(err)
	}

	lg := trace.NewLog(int(*rate * duration.Seconds()))
	var hist trace.Histogram
	var fails failures

	// Launch path: the text pool lends one lockstep connection per
	// request; the binary fleet lends one pipeline slot. Either way a
	// free lease is required to launch, so pool exhaustion means offered
	// load exceeds capacity and shows up as queueing at the generator,
	// like a saturated NIC.
	var pool chan *bufio.ReadWriter
	var fleet *binFleet
	switch *protoOpt {
	case "text":
		pool = make(chan *bufio.ReadWriter, *conns)
		for i := 0; i < *conns; i++ {
			c, err := net.Dial("tcp", *addr)
			if err != nil {
				log.Fatalf("dial %s: %v", *addr, err)
			}
			defer c.Close()
			rw := bufio.NewReadWriter(bufio.NewReader(c), bufio.NewWriter(c))
			if *brkdown {
				// Opt this connection into |OBS latency-breakdown trailers.
				fmt.Fprintf(rw, "OBS ON\n")
				rw.Flush()
				resp, err := rw.ReadString('\n')
				if err != nil || !strings.HasPrefix(resp, "OK") {
					log.Fatalf("-breakdown needs a server started with -obs: OBS ON replied %q, %v",
						strings.TrimSpace(resp), err)
				}
			}
			pool <- rw
		}
	case "binary":
		if *brkdown {
			log.Fatal("-breakdown needs -proto text (|OBS trailers are text-only)")
		}
		if *pipeline < 1 {
			log.Fatal("-pipeline must be at least 1")
		}
		var err error
		fleet, err = dialBinary(*addr, *conns, *pipeline, lg, &hist, &fails)
		if err != nil {
			log.Fatal(err)
		}
		defer fleet.close()
	default:
		log.Fatalf("-proto: unknown protocol %q (have text, binary)", *protoOpt)
	}

	var poller *statsPoller
	if *statsEvr > 0 {
		poller = startStatsPoller(*addr, *statsEvr)
	}

	rng := rand.New(rand.NewSource(*seed))
	deadline := time.Now().Add(*duration)
	launched := 0
	done := make(chan struct{}, 1<<16)
	inflight := 0

	for time.Now().Before(deadline) {
		// Open-loop arrivals: gaps from the -arrivals process at the
		// offered mean rate, regardless of completions.
		time.Sleep(nextGap(rng))
		o := gen(rng)
		if pickClass != nil {
			// Stamp the SLO class on both wire forms and prefix the
			// record label so every per-class table (breakdown, gap,
			// -summaryjson classes) splits by SLO class too.
			name, code := pickClass(rng)
			o.slo = code
			o.line = "@" + name + " " + o.line
			o.class = name + "/" + o.class
		}
		if fleet != nil {
			fleet.launch(o) // blocks when every pipeline slot is in flight
			launched++
			continue
		}
		rw := <-pool // blocks when all connections are busy
		launched++
		inflight++
		go func(o op, rw *bufio.ReadWriter, start time.Time) {
			defer func() { pool <- rw; done <- struct{}{} }()
			fmt.Fprintf(rw, "%s\n", o.line)
			rw.Flush()
			resp, err := rw.ReadString('\n')
			lat := time.Since(start)
			if err != nil || failed(resp) {
				fails.record(err, resp)
				return
			}
			r := trace.Record{
				Class:     o.class,
				ServiceUS: o.serviceUS,
				SojournUS: float64(lat) / float64(time.Microsecond),
			}
			if b, ok := parseObsTrailer(resp); ok {
				r.HasBreakdown = true
				r.HandoffUS, r.QueueUS, r.RunUS, r.PreemptedUS = b.handoff, b.queue, b.service, b.preempted
				r.IngressUS, r.EgressUS = b.ingress, b.egress
				r.Preemptions, r.OnDispatcher = b.preempts, b.dispatcher
			}
			lg.Add(r)
			hist.ObserveDuration(lat)
		}(o, rw, time.Now())
		// Reap completions without blocking the arrival process.
		for {
			select {
			case <-done:
				inflight--
				continue
			default:
			}
			break
		}
	}
	if fleet != nil {
		fleet.drain()
	}
	for inflight > 0 {
		<-done
		inflight--
	}

	var depthSamples []statsSample
	if poller != nil {
		samples, err := poller.finish()
		if err != nil {
			log.Printf("stats poller: %v (depth series dropped)", err)
		}
		depthSamples = samples
	}

	all := lg.Snapshot()
	skip := int(*warmup * float64(len(all)))
	steady := trace.NewLog(len(all) - skip)
	for _, r := range all[skip:] {
		steady.Add(r)
	}
	sum := steady.Summarize()
	completed := len(all)
	nfail := fails.total()
	// Achieved throughput counts only completed requests: failures got
	// no service, and counting them overstated capacity.
	achieved := float64(completed) / duration.Seconds()
	fmt.Printf("offered %.0f rps, launched %d, completed %d (%.0f rps achieved), failed %d\n",
		*rate, launched, completed, achieved, nfail)
	if nfail > 0 {
		fmt.Printf("failures: deadline=%d overloaded=%d stopped=%d shed=%d other=%d\n",
			fails.deadline.Load(), fails.overloaded.Load(), fails.stopped.Load(),
			fails.shed.Load(), fails.other.Load())
	}
	fmt.Printf("steady-state: %s\n", sum)
	if !math.IsNaN(sum.P999) {
		fmt.Printf("p99.9 slowdown %.1fx %s the 50x SLO\n", sum.P999, meets(sum.P999))
	}
	fmt.Print(hist.String())
	if *brkdown {
		printBreakdown(steady.Snapshot())
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		// The CSV gets the same warmup discard as the printed summary,
		// so offline analysis matches the report.
		if err := steady.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d records to %s (%d warmup samples discarded)\n", steady.Len(), *csvPath, skip)
	}
	if *statsCSV != "" && len(depthSamples) > 0 {
		f, err := os.Create(*statsCSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeStatsCSV(f, depthSamples); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d depth samples to %s\n", len(depthSamples), *statsCSV)
	}
	if ds := summarizeShardDepths(depthSamples); ds != nil {
		fmt.Printf("server depths over %d samples: central mean %.1f max %d, steals %d, per-shard q mean %v\n",
			ds.Samples, ds.CentralMean, ds.CentralMax, ds.Steals, ds.ShardQMean)
	}
	if *sumJSON != "" {
		s := runSummary{
			Schema:          1,
			Mix:             *mix,
			ClassSpec:       *classes,
			Arrivals:        *arrivals,
			DurationSec:     duration.Seconds(),
			OfferedRPS:      *rate,
			AchievedRPS:     achieved,
			Launched:        launched,
			Completed:       completed,
			WarmupDiscarded: skip,
			Failed: failCounts{
				Deadline:   fails.deadline.Load(),
				Overloaded: fails.overloaded.Load(),
				Stopped:    fails.stopped.Load(),
				Shed:       fails.shed.Load(),
				Other:      fails.other.Load(),
			},
			Steady: steadyStats{
				Count:           sum.Count,
				P50Slowdown:     sum.P50,
				P90Slowdown:     sum.P90,
				P99Slowdown:     sum.P99,
				P999Slowdown:    sum.P999,
				MeanSlowdown:    sum.MeanSlowdown,
				MeanSojournUS:   sum.MeanSojournUS,
				MeanPreemptions: sum.MeanPreemptions,
				DispatcherFrac:  sum.DispatcherFrac,
			},
			Classes:     classStats(steady.Snapshot()),
			ShardDepths: summarizeShardDepths(depthSamples),
		}
		if err := writeSummaryJSON(*sumJSON, s); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote summary to %s\n", *sumJSON)
	}
}

// runSummary is the -summaryjson schema (version 1): the stdout report
// in machine-readable form. Latency statistics carry the same warmup
// discard as the printed steady-state summary.
type runSummary struct {
	Schema int    `json:"schema"`
	Mix    string `json:"mix"`
	// ClassSpec and Arrivals echo -class and -arrivals (additive;
	// schema stays 1). Class-stamped runs also split the classes section by
	// SLO class, keyed "sloclass/opclass".
	ClassSpec       string               `json:"class,omitempty"`
	Arrivals        string               `json:"arrivals"`
	DurationSec     float64              `json:"duration_sec"`
	OfferedRPS      float64              `json:"offered_rps"`
	AchievedRPS     float64              `json:"achieved_rps"`
	Launched        int                  `json:"launched"`
	Completed       int                  `json:"completed"`
	WarmupDiscarded int                  `json:"warmup_discarded"`
	Failed          failCounts           `json:"failed"`
	Steady          steadyStats          `json:"steady"`
	Classes         map[string]classStat `json:"classes"`
	// ShardDepths is present when -statsevery polled the server: the
	// per-shard depth series condensed (additive; schema stays 1).
	ShardDepths *shardDepthStats `json:"shard_depths,omitempty"`
}

type failCounts struct {
	Deadline   int64 `json:"deadline"`
	Overloaded int64 `json:"overloaded"`
	Stopped    int64 `json:"stopped"`
	Shed       int64 `json:"shed"`
	Other      int64 `json:"other"`
}

type steadyStats struct {
	Count           int     `json:"count"`
	P50Slowdown     float64 `json:"p50_slowdown"`
	P90Slowdown     float64 `json:"p90_slowdown"`
	P99Slowdown     float64 `json:"p99_slowdown"`
	P999Slowdown    float64 `json:"p999_slowdown"`
	MeanSlowdown    float64 `json:"mean_slowdown"`
	MeanSojournUS   float64 `json:"mean_sojourn_us"`
	MeanPreemptions float64 `json:"mean_preemptions"`
	DispatcherFrac  float64 `json:"dispatcher_frac"`
}

type classStat struct {
	Count  int     `json:"count"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MeanUS float64 `json:"mean_us"`
}

// classStats computes exact per-class sojourn quantiles (sorted
// samples, not histogram buckets — the record set is already in
// memory).
func classStats(recs []trace.Record) map[string]classStat {
	byClass := map[string][]float64{}
	for _, r := range recs {
		byClass[r.Class] = append(byClass[r.Class], r.SojournUS)
	}
	out := make(map[string]classStat, len(byClass))
	for cl, us := range byClass {
		sort.Float64s(us)
		pct := func(p float64) float64 {
			rank := int(math.Ceil(p / 100 * float64(len(us))))
			if rank < 1 {
				rank = 1
			}
			return us[rank-1]
		}
		sum := 0.0
		for _, v := range us {
			sum += v
		}
		out[cl] = classStat{
			Count:  len(us),
			P50US:  pct(50),
			P99US:  pct(99),
			P999US: pct(99.9),
			MeanUS: sum / float64(len(us)),
		}
	}
	return out
}

// writeSummaryJSON writes the summary. NaN/Inf (empty-run percentiles)
// are not representable in JSON and would fail Marshal outright, so
// they are scrubbed to the -1 sentinel.
func writeSummaryJSON(path string, s runSummary) error {
	scrub := func(f *float64) {
		if math.IsNaN(*f) || math.IsInf(*f, 0) {
			*f = -1
		}
	}
	for _, f := range []*float64{
		&s.Steady.P50Slowdown, &s.Steady.P90Slowdown, &s.Steady.P99Slowdown,
		&s.Steady.P999Slowdown, &s.Steady.MeanSlowdown, &s.Steady.MeanSojournUS,
	} {
		scrub(f)
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(path, b, 0o644)
}

func meets(p999 float64) string {
	if p999 <= 50 {
		return "meets"
	}
	return "MISSES"
}

// obsTrailer is one parsed |OBS response suffix (µs components).
type obsTrailer struct {
	handoff, queue, service, preempted float64
	ingress, egress                    float64 // wire phases
	preempts                           int
	dispatcher                         bool
}

// parseObsTrailer extracts the server's breakdown trailer, if present:
//
//	VALUE xyz |OBS h=0.8 q=12.3 s=4.5 p=0.0 i=0.012 e=0.004 n=1 d=0
func parseObsTrailer(resp string) (obsTrailer, bool) {
	i := strings.LastIndex(resp, " |OBS ")
	if i < 0 {
		return obsTrailer{}, false
	}
	var b obsTrailer
	var d int
	_, err := fmt.Sscanf(strings.TrimSpace(resp[i+len(" |OBS "):]),
		"h=%f q=%f s=%f p=%f i=%f e=%f n=%d d=%d",
		&b.handoff, &b.queue, &b.service, &b.preempted, &b.ingress, &b.egress, &b.preempts, &d)
	if err != nil {
		return obsTrailer{}, false
	}
	b.dispatcher = d == 1
	return b, true
}

// printBreakdown renders the Table-1-style per-class component table
// from server-measured breakdowns, aggregated into log-2 histograms so
// the quantiles match what the server's /metrics endpoint exposes.
func printBreakdown(recs []trace.Record) {
	type comps struct {
		total, handoff, queue, service, preempted trace.Histogram
		ingress, egress                           trace.Histogram
		sojournUS, serverUS                       []float64 // paired, per request
		preempts, n                               int
	}
	byClass := map[string]*comps{}
	var classes []string
	for _, r := range recs {
		if !r.HasBreakdown {
			continue
		}
		c := byClass[r.Class]
		if c == nil {
			c = &comps{}
			byClass[r.Class] = c
			classes = append(classes, r.Class)
		}
		// Server-side wire-to-wire total, so the component rows sum to
		// it; the client-measured sojourn (which adds network +
		// client-side open-loop wait) is in the latency summary above
		// and in the gap table below.
		server := r.HandoffUS + r.QueueUS + r.RunUS + r.PreemptedUS + r.IngressUS + r.EgressUS
		c.total.ObserveUS(server)
		c.handoff.ObserveUS(r.HandoffUS)
		c.queue.ObserveUS(r.QueueUS)
		c.service.ObserveUS(r.RunUS)
		c.preempted.ObserveUS(r.PreemptedUS)
		c.ingress.ObserveUS(r.IngressUS)
		c.egress.ObserveUS(r.EgressUS)
		c.sojournUS = append(c.sojournUS, r.SojournUS)
		c.serverUS = append(c.serverUS, server)
		c.preempts += r.Preemptions
		c.n++
	}
	if len(classes) == 0 {
		fmt.Println("no breakdown data (server not started with -obs?)")
		return
	}
	sort.Strings(classes)
	fmt.Println("component breakdown (µs, from server-side tracing):")
	fmt.Printf("%-15s %-10s %10s %10s %10s %10s\n", "class", "component", "p50", "p99", "p99.9", "mean")
	for _, cl := range classes {
		c := byClass[cl]
		for _, row := range []struct {
			name string
			h    *trace.Histogram
		}{
			{"total", &c.total},
			{"ingress", &c.ingress},
			{"handoff", &c.handoff},
			{"queueing", &c.queue},
			{"service", &c.service},
			{"preempted", &c.preempted},
			{"egress", &c.egress},
		} {
			s := row.h.Snapshot()
			mean := 0.0
			if s.Count > 0 {
				mean = s.SumUS / float64(s.Count)
			}
			fmt.Printf("%-15s %-10s %10.1f %10.1f %10.1f %10.1f\n",
				cl, row.name, s.Quantile(0.50), s.Quantile(0.99), s.Quantile(0.999), mean)
		}
		fmt.Printf("%-15s %-10s %10.2f preempts/req over %d requests\n", cl, "preempt", float64(c.preempts)/float64(c.n), c.n)
	}
	// The gap table: what the client measured minus what the server can
	// account for, wire to wire. What remains is the network and the
	// client's own scheduling — if the gap dwarfs the server total, the
	// bottleneck is not in the server at all.
	fmt.Println("client-vs-server latency gap (µs; gap = client sojourn - server wire-to-wire total):")
	fmt.Printf("%-15s %8s %12s %12s %12s %12s %10s %10s\n",
		"class", "n", "client p50", "client p99", "client mean", "server mean", "gap mean", "gap p99")
	for _, cl := range classes {
		c := byClass[cl]
		gaps := make([]float64, len(c.sojournUS))
		var sumClient, sumServer, sumGap float64
		for i := range c.sojournUS {
			gaps[i] = c.sojournUS[i] - c.serverUS[i]
			sumClient += c.sojournUS[i]
			sumServer += c.serverUS[i]
			sumGap += gaps[i]
		}
		sorted := append([]float64(nil), c.sojournUS...)
		sort.Float64s(sorted)
		sort.Float64s(gaps)
		pct := func(v []float64, p float64) float64 {
			rank := int(math.Ceil(p / 100 * float64(len(v))))
			if rank < 1 {
				rank = 1
			}
			return v[rank-1]
		}
		n := float64(c.n)
		fmt.Printf("%-15s %8d %12.1f %12.1f %12.1f %12.1f %10.1f %10.1f\n",
			cl, c.n, pct(sorted, 50), pct(sorted, 99), sumClient/n, sumServer/n,
			sumGap/n, pct(gaps, 99))
	}
}
