// Command concordsim regenerates the paper's tables and figures from the
// simulated Concord/Shinjuku/Persephone server models.
//
// Usage:
//
//	concordsim -list
//	concordsim -fig fig6
//	concordsim -fig all -quick -parallel 8
//	concordsim -fig fig9 -requests 80000 -workers 14 -seed 7
//
// Output is TSV with '#' comment headers, one block per figure, always
// in figure-ID order regardless of -parallel: parallelism changes
// wall-clock time only, never the numbers (see internal/runner).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"concord/internal/figures"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure id (fig2..fig15, table1, ablation-*), or 'all'")
		list     = flag.Bool("list", false, "list available figure ids")
		quick    = flag.Bool("quick", false, "fast low-fidelity run (noisier tails)")
		requests = flag.Int("requests", 0, "requests per load point (0 = per-figure default)")
		workers  = flag.Int("workers", 0, "worker threads (0 = paper's 14)")
		seed     = flag.Uint64("seed", 0, "random seed (0 = 1)")
		timing   = flag.Bool("time", false, "print wall-clock time per figure to stderr")
		plot     = flag.Bool("plot", false, "render ASCII charts instead of TSV")
		parallel = flag.Int("parallel", 0, "max concurrent simulation runs (0 = GOMAXPROCS, 1 = serial)")
		profile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *list {
		for _, id := range figures.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "concordsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "concordsim: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := figures.Options{
		Requests: *requests, Workers: *workers, Seed: *seed, Parallel: *parallel,
	}
	if *quick {
		q := figures.Quick()
		if opts.Requests == 0 {
			opts.Requests = q.Requests
		}
		opts.LoadPoints = q.LoadPoints
	}

	gens := figures.All()
	var ids []string
	if *fig == "all" {
		ids = figures.IDs()
	} else {
		if _, ok := gens[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	// Generate figures concurrently (bounded by -parallel, like the
	// per-run pool) but print strictly in figure-ID order. Each figure's
	// table depends only on its own seeded runs, so interleaving figure
	// generation cannot change any number.
	par := *parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(ids) {
		par = len(ids)
	}
	type result struct {
		table   figures.Table
		elapsed time.Duration
	}
	results := make([]result, len(ids))
	done := make([]chan struct{}, len(ids))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, par)
	for i, id := range ids {
		go func(i int, id string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			results[i] = result{table: gens[id](opts), elapsed: time.Since(start)}
			close(done[i])
		}(i, id)
	}
	for i, id := range ids {
		<-done[i]
		if *timing {
			fmt.Fprintf(os.Stderr, "%s: %.1fs\n", id, results[i].elapsed.Seconds())
		}
		if *plot {
			fmt.Print(results[i].table.Plot(96, 20))
		} else {
			fmt.Print(results[i].table.TSV())
		}
		fmt.Println()
	}
}
