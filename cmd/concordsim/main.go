// Command concordsim regenerates the paper's tables and figures from the
// simulated Concord/Shinjuku/Persephone server models.
//
// Usage:
//
//	concordsim -list
//	concordsim -fig fig6
//	concordsim -fig all -quick
//	concordsim -fig fig9 -requests 80000 -workers 14 -seed 7
//
// Output is TSV with '#' comment headers, one block per figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"concord/internal/figures"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure id (fig2..fig15, table1, ablation-*), or 'all'")
		list     = flag.Bool("list", false, "list available figure ids")
		quick    = flag.Bool("quick", false, "fast low-fidelity run (noisier tails)")
		requests = flag.Int("requests", 0, "requests per load point (0 = per-figure default)")
		workers  = flag.Int("workers", 0, "worker threads (0 = paper's 14)")
		seed     = flag.Uint64("seed", 0, "random seed (0 = 1)")
		timing   = flag.Bool("time", false, "print wall-clock time per figure to stderr")
		plot     = flag.Bool("plot", false, "render ASCII charts instead of TSV")
	)
	flag.Parse()

	if *list {
		for _, id := range figures.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	opts := figures.Options{Requests: *requests, Workers: *workers, Seed: *seed}
	if *quick {
		q := figures.Quick()
		if opts.Requests == 0 {
			opts.Requests = q.Requests
		}
		opts.LoadPoints = q.LoadPoints
	}

	gens := figures.All()
	var ids []string
	if *fig == "all" {
		ids = figures.IDs()
	} else {
		if _, ok := gens[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; use -list\n", *fig)
			os.Exit(2)
		}
		ids = []string{*fig}
	}

	for _, id := range ids {
		start := time.Now()
		t := gens[id](opts)
		if *timing {
			fmt.Fprintf(os.Stderr, "%s: %.1fs\n", id, time.Since(start).Seconds())
		}
		if *plot {
			fmt.Print(t.Plot(96, 20))
		} else {
			fmt.Print(t.TSV())
		}
		fmt.Println()
	}
}
